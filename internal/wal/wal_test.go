package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/obs"
)

func openT(t *testing.T, dir string) *Log {
	t.Helper()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// appendCommitT appends one transaction and waits for durability.
func appendCommitT(t *testing.T, l *Log, txnID uint64, ops []Op) uint64 {
	t.Helper()
	seq, err := l.Append(txnID, ops)
	if err != nil {
		t.Fatalf("Append(txn %d): %v", txnID, err)
	}
	if err := l.Commit(seq); err != nil {
		t.Fatalf("Commit(seq %d): %v", seq, err)
	}
	return seq
}

func collect(t *testing.T, l *Log, afterSeq uint64) []*Txn {
	t.Helper()
	var txns []*Txn
	err := l.Replay(afterSeq, func(txn *Txn) error {
		// Values alias the scan buffer: deep-copy for post-replay asserts.
		cp := &Txn{ID: txn.ID, Seq: txn.Seq, Ops: make([]Op, len(txn.Ops))}
		for i, op := range txn.Ops {
			cp.Ops[i] = op
			cp.Ops[i].Value = append([]byte(nil), op.Value...)
		}
		txns = append(txns, cp)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay(%d): %v", afterSeq, err)
	}
	return txns
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	ops1 := []Op{
		{Kind: OpPut, Tree: "orders", Key: 1, Value: []byte("a")},
		{Kind: OpPut, Tree: "stock", Key: 2, Value: []byte("bb")},
		{Kind: OpDelete, Tree: "orders", Key: 3},
	}
	ops2 := []Op{
		{Kind: OpDropTree, Tree: "stock"},
		{Kind: OpPut, Tree: "orders", Key: 4, Value: nil}, // empty value round-trips
	}
	s1 := appendCommitT(t, l, 7, ops1)
	s2 := appendCommitT(t, l, 9, ops2)
	if s1 != 1 || s2 != 2 {
		t.Fatalf("seqs = %d, %d; want 1, 2", s1, s2)
	}

	check := func(l *Log) {
		t.Helper()
		txns := collect(t, l, 0)
		if len(txns) != 2 {
			t.Fatalf("replayed %d txns, want 2", len(txns))
		}
		if txns[0].ID != 7 || txns[0].Seq != 1 || txns[1].ID != 9 || txns[1].Seq != 2 {
			t.Fatalf("txn identity mismatch: %+v", txns)
		}
		for i, want := range [][]Op{ops1, ops2} {
			got := txns[i].Ops
			if len(got) != len(want) {
				t.Fatalf("txn %d: %d ops, want %d", i, len(got), len(want))
			}
			for j := range want {
				if got[j].Kind != want[j].Kind || got[j].Tree != want[j].Tree ||
					got[j].Key != want[j].Key || !bytes.Equal(got[j].Value, want[j].Value) {
					t.Fatalf("txn %d op %d = %+v, want %+v", i, j, got[j], want[j])
				}
			}
		}
		if got := collect(t, l, s1); len(got) != 1 || got[0].ID != 9 {
			t.Fatalf("Replay(after %d) = %+v, want only txn 9", s1, got)
		}
		if got := collect(t, l, s2); len(got) != 0 {
			t.Fatalf("Replay(after %d) = %+v, want none", s2, got)
		}
	}
	check(l)

	// The same state must come back from disk.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := openT(t, dir)
	defer l2.Close()
	if l2.Seq() != 2 || l2.MaxTxnID() != 9 {
		t.Fatalf("reopened Seq=%d MaxTxnID=%d, want 2, 9", l2.Seq(), l2.MaxTxnID())
	}
	check(l2)
	// Appends must continue the seq chain with the recovered intern table.
	if s := appendCommitT(t, l2, 10, []Op{{Kind: OpPut, Tree: "orders", Key: 5, Value: []byte("c")}}); s != 3 {
		t.Fatalf("post-reopen seq = %d, want 3", s)
	}
	if got := collect(t, l2, 0); len(got) != 3 {
		t.Fatalf("replayed %d txns after reopen append, want 3", len(got))
	}
}

// tailFile returns the newest generation file.
func tailFile(t *testing.T, dir string) string {
	t.Helper()
	gens, err := listGens(dir)
	if err != nil || len(gens) == 0 {
		t.Fatalf("listGens: %v (%d files)", err, len(gens))
	}
	return gens[len(gens)-1].path
}

func TestTornTailDiscardsFinalTxnWholesale(t *testing.T) {
	for _, cut := range []int{1, 5, 9, 30} {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			l := openT(t, dir)
			appendCommitT(t, l, 1, []Op{{Kind: OpPut, Tree: "a", Key: 1, Value: []byte("keep")}})
			fi1, err := os.Stat(tailFile(t, dir))
			if err != nil {
				t.Fatal(err)
			}
			appendCommitT(t, l, 2, []Op{
				{Kind: OpPut, Tree: "a", Key: 2, Value: []byte("torn")},
				{Kind: OpPut, Tree: "b", Key: 3, Value: []byte("torn")},
			})
			l.Close()

			// Tear the tail: chop bytes off the final transaction. Every cut
			// point — mid-commit-record, mid-op, mid-bind — must erase txn 2
			// as a unit and leave txn 1 standing.
			path := tailFile(t, dir)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if cut >= len(data) {
				t.Skipf("file only %d bytes", len(data))
			}
			if err := os.WriteFile(path, data[:len(data)-cut], 0o644); err != nil {
				t.Fatal(err)
			}

			l2 := openT(t, dir)
			defer l2.Close()
			txns := collect(t, l2, 0)
			if len(txns) != 1 || txns[0].ID != 1 {
				t.Fatalf("after tear: replayed %+v, want only txn 1", txns)
			}
			if l2.Seq() != 1 {
				t.Fatalf("Seq = %d after tear, want 1", l2.Seq())
			}
			// Open must have repaired the file physically: truncated back to
			// exactly the end of txn 1.
			repaired, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if repaired.Size() != fi1.Size() {
				t.Fatalf("repaired tail is %d bytes, want %d (end of txn 1)", repaired.Size(), fi1.Size())
			}
			// New appends go through and the torn txn id is not reused.
			if l2.MaxTxnID() != 1 {
				t.Fatalf("MaxTxnID = %d, want 1 (txn 2 vanished)", l2.MaxTxnID())
			}
			appendCommitT(t, l2, 2, []Op{{Kind: OpPut, Tree: "a", Key: 9, Value: []byte("new")}})
			if got := collect(t, l2, 0); len(got) != 2 || got[1].Seq != 2 {
				t.Fatalf("after repair+append: %+v", got)
			}
		})
	}
}

func TestCorruptMiddleRecordEndsScanAtPriorCommit(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	appendCommitT(t, l, 1, []Op{{Kind: OpPut, Tree: "a", Key: 1, Value: []byte("one")}})
	tail1, err := os.Stat(tailFile(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	appendCommitT(t, l, 2, []Op{{Kind: OpPut, Tree: "a", Key: 2, Value: []byte("two")}})
	appendCommitT(t, l, 3, []Op{{Kind: OpPut, Tree: "a", Key: 3, Value: []byte("three")}})
	l.Close()

	// Flip a byte inside txn 2's region: txns 2 AND 3 are gone (the log is
	// a prefix code — nothing after a bad record can be trusted).
	path := tailFile(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[tail1.Size()+recFrameSize+2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := openT(t, dir)
	defer l2.Close()
	if txns := collect(t, l2, 0); len(txns) != 1 || txns[0].ID != 1 {
		t.Fatalf("after mid-corruption: %+v, want only txn 1", txns)
	}
}

func TestTruncateRotatesAndDeletesCoveredGenerations(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	defer l.Close()
	appendCommitT(t, l, 1, []Op{{Kind: OpPut, Tree: "t", Key: 1, Value: []byte("x")}})
	ck := appendCommitT(t, l, 2, []Op{{Kind: OpPut, Tree: "t", Key: 2, Value: []byte("y")}})
	if err := l.Truncate(ck); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Truncations != 1 || st.Generations != 1 || st.Generation != 2 {
		t.Fatalf("after truncate: %+v", st)
	}
	if got := collect(t, l, ck); len(got) != 0 {
		t.Fatalf("checkpoint-covered txns still replayable: %+v", got)
	}
	// The intern table reset: the same tree must re-bind in the new
	// generation and replay correctly.
	appendCommitT(t, l, 3, []Op{{Kind: OpPut, Tree: "t", Key: 3, Value: []byte("z")}})
	got := collect(t, l, ck)
	if len(got) != 1 || got[0].ID != 3 || got[0].Ops[0].Tree != "t" {
		t.Fatalf("post-rotation replay: %+v", got)
	}
	gens, err := listGens(dir)
	if err != nil || len(gens) != 1 {
		t.Fatalf("generation files = %v (%v), want exactly the new one", gens, err)
	}
}

func TestReopenAcrossTruncateKeepsTail(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	ck := appendCommitT(t, l, 1, []Op{{Kind: OpPut, Tree: "t", Key: 1, Value: []byte("old")}})
	if err := l.Truncate(ck); err != nil {
		t.Fatal(err)
	}
	appendCommitT(t, l, 2, []Op{{Kind: OpPut, Tree: "t", Key: 2, Value: []byte("new")}})
	l.Close()

	l2 := openT(t, dir)
	defer l2.Close()
	if l2.Seq() != 2 {
		t.Fatalf("Seq = %d, want 2", l2.Seq())
	}
	if got := collect(t, l2, ck); len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("Replay past checkpoint: %+v, want txn 2", got)
	}
}

func TestVolatileMode(t *testing.T) {
	l, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	s1 := appendCommitT(t, l, 1, []Op{{Kind: OpPut, Tree: "t", Key: 1, Value: []byte("v")}})
	s2 := appendCommitT(t, l, 2, nil)
	if s1 != 1 || s2 != 2 {
		t.Fatalf("volatile seqs %d, %d", s1, s2)
	}
	if err := l.Truncate(s2); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, l, 0); len(got) != 0 {
		t.Fatalf("volatile replay returned %+v", got)
	}
	if st := l.Stats(); st.Commits != 2 || st.Durable != 2 {
		t.Fatalf("volatile stats %+v", st)
	}
}

func TestClosedLogFails(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, nil); err != ErrClosed {
		t.Fatalf("Append after close = %v", err)
	}
	if err := l.Truncate(0); err != ErrClosed {
		t.Fatalf("Truncate after close = %v", err)
	}
	if err := l.Close(); err != ErrClosed {
		t.Fatalf("second Close = %v", err)
	}
}

// TestGroupCommitCoalesces runs many concurrent committers (appends
// serialized, as pagedb serializes them under its write lock) and checks
// the group-commit property the whole design exists for: fewer fsync
// rounds than commits, with every committed txn replayable.
func TestGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	reg := obs.New()
	l, err := Open(Options{Dir: dir, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const workers, perWorker = 8, 25
	var appendMu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				txnID := uint64(w*perWorker + i + 1)
				appendMu.Lock()
				seq, err := l.Append(txnID, []Op{{Kind: OpPut, Tree: "t", Key: txnID, Value: []byte("v")}})
				appendMu.Unlock()
				if err != nil {
					errs <- err
					return
				}
				if err := l.Commit(seq); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := l.Stats()
	total := uint64(workers * perWorker)
	if st.Commits != total {
		t.Fatalf("commits = %d, want %d", st.Commits, total)
	}
	if st.Rounds >= st.Commits {
		t.Fatalf("group commit never coalesced: %d rounds for %d commits", st.Rounds, st.Commits)
	}
	if st.Durable != st.Seq || st.Seq != total {
		t.Fatalf("durable=%d seq=%d, want both %d", st.Durable, st.Seq, total)
	}
	if got := collect(t, l, 0); len(got) != int(total) {
		t.Fatalf("replayed %d txns, want %d", len(got), total)
	}
	snap := reg.Snapshot()
	if snap.Counters["wal.commit.commits"] != total || snap.Counters["wal.commit.rounds"] != st.Rounds {
		t.Fatalf("obs counters diverge from Stats: %v vs %+v", snap.Counters, st)
	}
	for _, h := range []string{"wal.append.ns", "wal.fsync.ns", "wal.commit.ns"} {
		if snap.Histograms[h].Count == 0 {
			t.Fatalf("histogram %s never recorded", h)
		}
	}
}

// TestConcurrentCommitAndTruncate races committers against periodic
// checkpoint truncations — the flushMu handoff under test is "rotation
// never closes a file an fsync round still holds".
func TestConcurrentCommitAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	defer l.Close()

	const total = 120
	var mu sync.Mutex // serializes Append+Truncate like pagedb's write lock
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < total/4; i++ {
				txnID := uint64(w*(total/4) + i + 1)
				mu.Lock()
				seq, err := l.Append(txnID, []Op{{Kind: OpPut, Tree: "t", Key: txnID, Value: []byte("v")}})
				if err == nil && txnID%16 == 0 {
					// Checkpoint: under pagedb's lock the checkpoint covers
					// every appended txn, then truncates.
					if cerr := l.Commit(seq); cerr == nil {
						err = l.Truncate(seq)
					} else {
						err = cerr
					}
				}
				mu.Unlock()
				if err == nil {
					err = l.Commit(seq)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Seq != total || st.Durable != total {
		t.Fatalf("seq=%d durable=%d, want %d", st.Seq, st.Durable, total)
	}
	if st.Truncations == 0 {
		t.Fatal("no truncation ever ran")
	}
}

func TestRotationCrashDropsHeaderlessSuccessor(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	ck := appendCommitT(t, l, 1, []Op{{Kind: OpPut, Tree: "t", Key: 1, Value: []byte("x")}})
	if err := l.Truncate(ck); err != nil {
		t.Fatal(err)
	}
	appendCommitT(t, l, 2, []Op{{Kind: OpPut, Tree: "t", Key: 2, Value: []byte("y")}})
	l.Close()

	// Simulate a rotation that crashed before the new file's header was
	// durable: a successor file with a garbage header must be discarded,
	// and the predecessor adopted as the tail.
	if err := os.WriteFile(filepath.Join(dir, genPath("", 3)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := openT(t, dir)
	defer l2.Close()
	if l2.Seq() != 2 {
		t.Fatalf("Seq = %d, want 2", l2.Seq())
	}
	if got := collect(t, l2, ck); len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("replay: %+v", got)
	}
	// The garbage file is gone and appends resume on the adopted tail.
	if _, err := os.Stat(genPath(dir, 3)); !os.IsNotExist(err) {
		t.Fatalf("orphan generation survived recovery: %v", err)
	}
	appendCommitT(t, l2, 3, []Op{{Kind: OpPut, Tree: "t", Key: 3, Value: []byte("z")}})
}
