package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// On-disk layout (format "PGWALOG1"). The log is a sequence of generation
// files wal-<gen>.log, each an append-only run of CRC-framed records:
//
//	generation header (28 bytes):
//	    magic "PGWALOG1" (8) | generation (8) | base commit seq (8) | crc (4)
//	record:
//	    payload length (4) | crc (4, CRC-32C over type+payload) |
//	    type (1) | payload
//
// Record types and payloads (little-endian):
//
//	bind:     treeID (4) | nameLen (2) | name
//	put:      txnID (8) | treeID (4) | key (8) | value
//	delete:   txnID (8) | treeID (4) | key (8)
//	droptree: txnID (8) | treeID (4)
//	commit:   txnID (8) | commit seq (8) | op count (4)
//
// A transaction's records — any bind records its trees need, its ops, and
// the terminal commit record — are appended in ONE buffered write under the
// log mutex, so on disk they are contiguous and only a physical tear at the
// file tail can split them. The commit record is the transaction's
// durability marker: a scan that does not reach it discards the
// transaction's ops wholesale (and Open truncates them off the file), which
// is what makes a torn final transaction vanish as a unit. Tree names are
// interned per generation: a bind record maps a compact tree id to its
// name, and rotation (Truncate) starts a fresh intern table so a generation
// is always self-describing.
//
// The commit seq is the log's transaction clock: assigned at append time
// under the log mutex (so seq order is exactly apply order when the caller
// serializes Append with its own state mutation), monotone across
// generations, and compared against the checkpoint watermark during replay.
const (
	logMagic      = "PGWALOG1"
	genHeaderSize = 28

	recBind     = 1
	recPut      = 2
	recDelete   = 3
	recDropTree = 4
	recCommit   = 5

	recFrameSize = 8 // payload length (4) + crc (4)

	// maxRecordPayload bounds a single record (a put's value is capped far
	// lower by the page engines); a length beyond it is treated as a tear.
	maxRecordPayload = 1 << 26
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// OpKind identifies a logical tree operation in the log.
type OpKind uint8

// The replayable operations.
const (
	OpPut OpKind = iota + 1
	OpDelete
	OpDropTree
)

func (k OpKind) String() string {
	switch k {
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpDropTree:
		return "droptree"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one logical tree operation: the redo unit pagedb logs before
// mutating its trees. Value is only meaningful for OpPut; Key only for
// OpPut and OpDelete.
type Op struct {
	Kind  OpKind
	Tree  string
	Key   uint64
	Value []byte
}

// Txn is one committed transaction as the replay scan surfaces it: its ops
// in append (= apply) order plus the commit seq that orders it against the
// checkpoint watermark.
type Txn struct {
	ID  uint64
	Seq uint64
	Ops []Op
}

// encodeGenHeader writes a generation file header.
func encodeGenHeader(dst []byte, gen, baseSeq uint64) {
	copy(dst[:8], logMagic)
	binary.LittleEndian.PutUint64(dst[8:16], gen)
	binary.LittleEndian.PutUint64(dst[16:24], baseSeq)
	binary.LittleEndian.PutUint32(dst[24:28], crc32.Checksum(dst[:24], castagnoli))
}

// decodeGenHeader parses a generation file header.
func decodeGenHeader(b []byte) (gen, baseSeq uint64, ok bool) {
	if len(b) < genHeaderSize || string(b[:8]) != logMagic {
		return 0, 0, false
	}
	if crc32.Checksum(b[:24], castagnoli) != binary.LittleEndian.Uint32(b[24:28]) {
		return 0, 0, false
	}
	return binary.LittleEndian.Uint64(b[8:16]), binary.LittleEndian.Uint64(b[16:24]), true
}

// appendRecord frames one record (type byte + payload) onto buf.
func appendRecord(buf []byte, typ byte, payload []byte) []byte {
	var hdr [recFrameSize + 1]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload))+1) // +1: type byte
	hdr[8] = typ
	crc := crc32.Checksum(hdr[8:9], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// record is one decoded frame: the type byte plus its raw payload.
type record struct {
	typ     byte
	payload []byte
}

// nextRecord decodes the record at b[off:]. A short frame, an implausible
// length, or a checksum mismatch returns ok=false: the scan treats the
// position as the tail tear.
func nextRecord(b []byte, off int) (rec record, end int, ok bool) {
	if off+recFrameSize > len(b) {
		return record{}, off, false
	}
	n := int(binary.LittleEndian.Uint32(b[off : off+4]))
	if n < 1 || n > maxRecordPayload || off+recFrameSize+n > len(b) {
		return record{}, off, false
	}
	crc := binary.LittleEndian.Uint32(b[off+4 : off+8])
	body := b[off+recFrameSize : off+recFrameSize+n]
	if crc32.Checksum(body, castagnoli) != crc {
		return record{}, off, false
	}
	return record{typ: body[0], payload: body[1:]}, off + recFrameSize + n, true
}

// Payload encoders. Append-side only; the buffer is the transaction's
// single-write staging area.

func appendBind(buf []byte, id uint32, name string) []byte {
	p := make([]byte, 0, 6+len(name))
	p = binary.LittleEndian.AppendUint32(p, id)
	p = binary.LittleEndian.AppendUint16(p, uint16(len(name)))
	p = append(p, name...)
	return appendRecord(buf, recBind, p)
}

func appendOp(buf []byte, txnID uint64, treeID uint32, op Op) []byte {
	switch op.Kind {
	case OpPut:
		p := make([]byte, 0, 20+len(op.Value))
		p = binary.LittleEndian.AppendUint64(p, txnID)
		p = binary.LittleEndian.AppendUint32(p, treeID)
		p = binary.LittleEndian.AppendUint64(p, op.Key)
		p = append(p, op.Value...)
		return appendRecord(buf, recPut, p)
	case OpDelete:
		p := make([]byte, 0, 20)
		p = binary.LittleEndian.AppendUint64(p, txnID)
		p = binary.LittleEndian.AppendUint32(p, treeID)
		p = binary.LittleEndian.AppendUint64(p, op.Key)
		return appendRecord(buf, recDelete, p)
	case OpDropTree:
		p := make([]byte, 0, 12)
		p = binary.LittleEndian.AppendUint64(p, txnID)
		p = binary.LittleEndian.AppendUint32(p, treeID)
		return appendRecord(buf, recDropTree, p)
	}
	panic(fmt.Sprintf("wal: unencodable op kind %v", op.Kind))
}

func appendCommit(buf []byte, txnID, seq uint64, opCount int) []byte {
	p := make([]byte, 0, 20)
	p = binary.LittleEndian.AppendUint64(p, txnID)
	p = binary.LittleEndian.AppendUint64(p, seq)
	p = binary.LittleEndian.AppendUint32(p, uint32(opCount))
	return appendRecord(buf, recCommit, p)
}
