package sim

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestQuickInvariantsUnderRandomDrive drives the simulator with random
// workload mixes, algorithms and buffer sizes and checks the conservation
// invariants at random points mid-stream, not just at the end.
func TestQuickInvariantsUnderRandomDrive(t *testing.T) {
	names := core.Names()
	err := quick.Check(func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, seed^0x5bd1e995))
		algName := names[r.IntN(len(names))]
		alg, err := core.ByName(algName)
		if err != nil {
			return false
		}
		cfg := Config{
			SegmentPages:    16 + r.IntN(3)*16, // 16, 32 or 48
			NumSegments:     256,
			FillFactor:      0.5 + r.Float64()*0.3,
			FreeLowWater:    4,
			CleanBatch:      1 + r.IntN(8),
			WriteBufferSegs: r.IntN(5),
		}
		var gen workload.Generator
		switch r.IntN(3) {
		case 0:
			gen = workload.NewUniform(cfg.UserPages(), int64(seed))
		case 1:
			gen = workload.NewZipf(cfg.UserPages(), 0.5+r.Float64(), int64(seed))
		default:
			gen = workload.NewSkew(cfg.UserPages(), 0.6+r.Float64()*0.3, int64(seed))
		}
		s, err := New(cfg, alg, gen)
		if err != nil {
			t.Logf("seed %x: %v", seed, err)
			return false
		}
		for p := 0; p < gen.PreloadPages(); p++ {
			s.Write(uint32(p))
		}
		checkAt := 1 + r.IntN(4)
		for i := 0; i < 4; i++ {
			for j := 0; j < 2*gen.Universe(); j++ {
				p, _ := gen.Next()
				s.Write(p)
			}
			if i == checkAt || i == 3 {
				if err := s.CheckInvariants(); err != nil {
					t.Logf("seed %x alg %s: %v", seed, algName, err)
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}

// TestQuickWampIdentityUnbuffered checks equation 2 numerically: for
// unbuffered algorithms, measured Wamp must track (1-E)/E of the measured
// emptiness at cleaning within the tolerance allowed by batching effects.
func TestQuickWampIdentityUnbuffered(t *testing.T) {
	err := quick.Check(func(seedRaw uint8) bool {
		seed := int64(seedRaw) + 1
		cfg := Config{SegmentPages: 32, NumSegments: 512, FillFactor: 0.8,
			FreeLowWater: 4, CleanBatch: 8, WriteBufferSegs: 0}
		gen := workload.NewUniform(cfg.UserPages(), seed)
		res, err := Run(cfg, core.Greedy(), gen, RunOptions{UpdateMultiple: 12})
		if err != nil {
			return false
		}
		wantWamp := (1 - res.MeanEAtClean) / res.MeanEAtClean
		rel := (res.Wamp - wantWamp) / wantWamp
		if rel < 0 {
			rel = -rel
		}
		return rel < 0.08 && res.Wamp == res.WampPhysical
	}, &quick.Config{MaxCount: 6})
	if err != nil {
		t.Error(err)
	}
}
