package sim

import (
	"fmt"

	"repro/internal/core"
)

// CheckInvariants verifies the simulator's conservation properties and
// returns the first violation found:
//
//  1. Every page written so far is locatable exactly once (write buffer or a
//     segment slot whose back-pointer matches).
//  2. Per segment, Free == Capacity - Live*PageSize and 0 <= Live <= S.
//  3. The sum of segment Live counts plus buffered pages equals the number
//     of distinct pages ever written.
//  4. Segment states partition the store: free-pool members are SegFree,
//     open-stream members are SegOpen, everything else holding pages is
//     SegSealed or SegOpen.
func (s *Sim) CheckInvariants() error {
	S := uint64(s.cfg.SegmentPages)

	inFree := make(map[int32]bool, len(s.free))
	for _, id := range s.free {
		if inFree[id] {
			return fmt.Errorf("segment %d appears twice in the free pool", id)
		}
		inFree[id] = true
		if st := s.meta[id].State; st != core.SegFree {
			return fmt.Errorf("segment %d in free pool has state %v", id, st)
		}
	}
	openSegs := make(map[int32]bool)
	for stream, o := range s.open {
		if o.id < 0 {
			continue
		}
		openSegs[o.id] = true
		m := &s.meta[o.id]
		if m.State != core.SegOpen {
			return fmt.Errorf("open segment %d (stream %d) has state %v", o.id, stream, m.State)
		}
		if m.Stream != int32(stream) {
			return fmt.Errorf("open segment %d stream mismatch: meta %d vs slot %d", o.id, m.Stream, stream)
		}
	}

	liveBySeg := make([]int32, len(s.meta))
	var located uint64
	for p := range s.pageLoc {
		loc := s.pageLoc[p]
		switch {
		case loc == 0:
			continue
		case loc&bufTag != 0:
			idx := loc &^ bufTag
			if idx >= uint64(len(s.buf)) {
				return fmt.Errorf("page %d buffer index %d out of range %d", p, idx, len(s.buf))
			}
			if s.buf[idx].page != uint32(p) {
				return fmt.Errorf("page %d buffer entry holds page %d", p, s.buf[idx].page)
			}
			located++
		default:
			g := loc - 1
			seg := int32(g / S)
			if int(seg) >= len(s.meta) {
				return fmt.Errorf("page %d points past segment array (seg %d)", p, seg)
			}
			if s.slots[g] != uint32(p) {
				return fmt.Errorf("page %d slot back-pointer mismatch: slot holds %d", p, s.slots[g])
			}
			st := s.meta[seg].State
			if st != core.SegSealed && st != core.SegOpen {
				return fmt.Errorf("page %d lives in segment %d with state %v", p, seg, st)
			}
			liveBySeg[seg]++
			located++
		}
	}

	var totalLive uint64
	for id := range s.meta {
		m := &s.meta[id]
		if m.Live < 0 || int(m.Live) > s.cfg.SegmentPages {
			return fmt.Errorf("segment %d live count %d out of range", id, m.Live)
		}
		if m.Live != liveBySeg[id] {
			return fmt.Errorf("segment %d live count %d but %d pages point to it", id, m.Live, liveBySeg[id])
		}
		if want := m.Capacity - int64(m.Live)*s.cfg.PageSize; m.Free != want {
			return fmt.Errorf("segment %d free bytes %d, want %d (live=%d)", id, m.Free, want, m.Live)
		}
		if m.State == core.SegFree && m.Live != 0 {
			return fmt.Errorf("free segment %d holds %d live pages", id, m.Live)
		}
		totalLive += uint64(m.Live)
	}
	if totalLive+uint64(len(s.buf)) != located {
		return fmt.Errorf("live accounting mismatch: segments %d + buffered %d != located %d",
			totalLive, len(s.buf), located)
	}
	return nil
}
