package sim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/workload"
)

// tinyCfg is a fast configuration with paper-proportioned reserve and batch.
func tinyCfg(f float64) Config {
	return Config{
		SegmentPages: 32, NumSegments: 256, FillFactor: f,
		FreeLowWater: 4, CleanBatch: 8, WriteBufferSegs: 4,
	}
}

// smallCfg is the accuracy configuration used by the agreement tests.
func smallCfg(f float64) Config {
	return Config{
		SegmentPages: 64, NumSegments: 1024, FillFactor: f,
		FreeLowWater: 4, CleanBatch: 8, WriteBufferSegs: 8,
	}
}

func TestConfigValidation(t *testing.T) {
	gen := workload.NewUniform(1000, 1)
	if _, err := New(Config{FillFactor: 0}, core.Greedy(), gen); err == nil {
		t.Error("F=0 must fail")
	}
	if _, err := New(Config{FillFactor: 1.2}, core.Greedy(), gen); err == nil {
		t.Error("F>1 must fail")
	}
	// Universe exceeding the fill-factor budget must fail.
	big := workload.NewUniform(300*32, 1)
	cfg := tinyCfg(0.5)
	if _, err := New(cfg, core.Greedy(), big); err == nil {
		t.Error("oversized universe must fail")
	}
	// Too little slack for the reserve must fail.
	crowded := workload.NewUniform(250*32, 1)
	if _, err := New(tinyCfg(0.999), core.Greedy(), crowded); err == nil ||
		!strings.Contains(err.Error(), "slack") {
		t.Error("insufficient slack must fail with a slack error")
	}
	// Exact algorithms need an oracle.
	noOracle := workload.NewShifting(1000, 0.1, 0.9, 100, 1)
	if _, err := New(tinyCfg(0.5), core.MDCOpt(), noOracle); err == nil ||
		!strings.Contains(err.Error(), "oracle") {
		t.Error("exact algorithm without oracle must fail")
	}
}

func TestInvariantsUnderEveryAlgorithm(t *testing.T) {
	for _, name := range core.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			alg, err := core.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := tinyCfg(0.8)
			gen := workload.NewSkew(cfg.UserPages(), 0.8, 42)
			s, err := New(cfg, alg, gen)
			if err != nil {
				t.Fatal(err)
			}
			for p := 0; p < gen.PreloadPages(); p++ {
				s.Write(uint32(p))
			}
			for i := 0; i < 12*gen.Universe(); i++ {
				p, _ := gen.Next()
				s.Write(p)
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("invariants violated: %v", err)
			}
			// Every page must be locatable after the run.
			for p := 0; p < gen.Universe(); p++ {
				if _, _, _, ok := s.Location(uint32(p)); !ok {
					t.Fatalf("page %d lost", p)
				}
			}
		})
	}
}

func TestInvariantsWithoutWriteBuffer(t *testing.T) {
	cfg := tinyCfg(0.8)
	cfg.WriteBufferSegs = 0
	gen := workload.NewZipf(cfg.UserPages(), 0.99, 7)
	s, err := New(cfg, core.MDC(), gen)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < gen.PreloadPages(); p++ {
		s.Write(uint32(p))
	}
	for i := 0; i < 10*gen.Universe(); i++ {
		p, _ := gen.Next()
		s.Write(p)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLocationTransitions(t *testing.T) {
	cfg := tinyCfg(0.6)
	gen := workload.NewUniform(cfg.UserPages(), 3)
	// MDC separates user writes, so it runs with the write buffer.
	s, err := New(cfg, core.MDC(), gen)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, ok := s.Location(0); ok {
		t.Error("unwritten page must not be locatable")
	}
	s.Write(0)
	if _, _, buffered, ok := s.Location(0); !ok || !buffered {
		t.Error("freshly written page should sit in the write buffer")
	}
	// Fill past one buffer worth so page 0 is flushed to a segment.
	for p := 1; p < cfg.WriteBufferSegs*cfg.SegmentPages+1; p++ {
		s.Write(uint32(p % cfg.UserPages()))
	}
	if _, _, buffered, ok := s.Location(0); !ok || buffered {
		t.Error("page 0 should have been flushed to a segment")
	}
	if _, _, _, ok := s.Location(math.MaxUint32); ok {
		t.Error("out-of-universe page must not be locatable")
	}
}

func TestAbsorptionCoalescesHotRewrites(t *testing.T) {
	cfg := tinyCfg(0.7)
	gen := workload.NewSkew(cfg.UserPages(), 0.9, 5)
	res, err := Run(cfg, core.MDC(), gen, RunOptions{UpdateMultiple: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.AbsorbedUpdates == 0 {
		t.Error("skewed workload with a write buffer should absorb some rewrites")
	}
	if res.LogicalUpdates != res.UserPageWrites+res.AbsorbedUpdates {
		// Up to one buffer of pending writes may be in flight at snapshot
		// time, so allow that slack.
		diff := int64(res.LogicalUpdates) - int64(res.UserPageWrites+res.AbsorbedUpdates)
		if diff < 0 || diff > int64(cfg.WriteBufferSegs*cfg.SegmentPages) {
			t.Errorf("accounting broken: logical=%d phys=%d absorbed=%d",
				res.LogicalUpdates, res.UserPageWrites, res.AbsorbedUpdates)
		}
	}
	cfg.WriteBufferSegs = 0
	res0, err := Run(cfg, core.MDC(), gen, RunOptions{UpdateMultiple: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res0.AbsorbedUpdates != 0 {
		t.Error("unbuffered run must not absorb")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := tinyCfg(0.8)
	run := func() Result {
		gen := workload.NewZipf(cfg.UserPages(), 0.99, 123)
		res, err := Run(cfg, core.MDC(), gen, RunOptions{UpdateMultiple: 8})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

// TestAgreementTable1 is the paper's §8.1 uniform-distribution agreement:
// the simulated emptiness at cleaning under age-based cleaning must match
// the analytic fixpoint to about two digits.
func TestAgreementTable1(t *testing.T) {
	for _, f := range []float64{0.7, 0.8, 0.9} {
		want := analysis.FixpointE(f)
		cfg := smallCfg(f)
		gen := workload.NewUniform(cfg.UserPages(), 42)
		res, err := Run(cfg, core.Age(), gen, RunOptions{UpdateMultiple: 30})
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(res.MeanEAtClean-want) / want; rel > 0.04 {
			t.Errorf("F=%v: sim E@clean=%.4f vs analysis %.4f (rel %.3f)",
				f, res.MeanEAtClean, want, rel)
		}
	}
}

// TestAgreementTable2 is the paper's hot/cold agreement: MDC-opt on an
// 80-20 hot/cold workload at F=0.8 approaches the analytic minimum cost
// (write amplification ~1.0), far below greedy.
func TestAgreementTable2(t *testing.T) {
	cfg := smallCfg(0.8)
	gen := workload.NewSkew(cfg.UserPages(), 0.8, 42)
	res, err := Run(cfg, core.MDCOpt(), gen, RunOptions{UpdateMultiple: 30})
	if err != nil {
		t.Fatal(err)
	}
	opt := analysis.WampFromCost(analysis.HotColdCost(0.8, 0.8, 0.5))
	if res.Wamp > opt*1.15 {
		t.Errorf("MDC-opt Wamp=%.3f too far above analytic optimum %.3f", res.Wamp, opt)
	}
	if res.Wamp < opt*0.85 {
		t.Errorf("MDC-opt Wamp=%.3f suspiciously below analytic optimum %.3f", res.Wamp, opt)
	}
}

// TestUniformEquivalences checks §6.2.2's Figure 5a observations: under a
// uniform distribution age, greedy and MDC-opt all sit near the analytic
// write amplification.
func TestUniformEquivalences(t *testing.T) {
	cfg := smallCfg(0.8)
	want := analysis.Wamp(analysis.FixpointE(0.8))
	for _, alg := range []core.Algorithm{core.Age(), core.Greedy(), core.MDCOpt(), core.MDC()} {
		gen := workload.NewUniform(cfg.UserPages(), 42)
		res, err := Run(cfg, alg, gen, RunOptions{UpdateMultiple: 25})
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(res.Wamp-want) / want; rel > 0.08 {
			t.Errorf("%s uniform Wamp=%.3f vs analytic %.3f (rel %.3f)",
				alg.Name, res.Wamp, want, rel)
		}
	}
}

// TestSkewedOrdering checks the headline result (Figures 3/5): under skew,
// MDC-opt <= MDC < greedy, and MDC beats the no-separation ablations.
func TestSkewedOrdering(t *testing.T) {
	cfg := smallCfg(0.8)
	wamp := func(alg core.Algorithm) float64 {
		gen := workload.NewSkew(cfg.UserPages(), 0.8, 42)
		res, err := Run(cfg, alg, gen, RunOptions{UpdateMultiple: 25})
		if err != nil {
			t.Fatal(err)
		}
		return res.Wamp
	}
	greedy := wamp(core.Greedy())
	mdc := wamp(core.MDC())
	mdcOpt := wamp(core.MDCOpt())
	noSepUser := wamp(core.MDCNoSepUser())
	noSepBoth := wamp(core.MDCNoSepUserGC())

	if !(mdcOpt <= mdc*1.02) {
		t.Errorf("MDC-opt (%.3f) should not exceed MDC (%.3f)", mdcOpt, mdc)
	}
	if !(mdc < greedy) {
		t.Errorf("MDC (%.3f) should beat greedy (%.3f) under skew", mdc, greedy)
	}
	// §6.2.1: separating user writes matters more than separating GC
	// writes; removing either costs something.
	if !(mdc <= noSepUser*1.02) {
		t.Errorf("MDC (%.3f) should not exceed MDC-no-sep-user (%.3f)", mdc, noSepUser)
	}
	if !(noSepUser <= noSepBoth*1.05) {
		t.Errorf("no-sep-user (%.3f) should not clearly exceed no-sep-user-GC (%.3f)",
			noSepUser, noSepBoth)
	}
}

func TestMultiLogRuns(t *testing.T) {
	cfg := smallCfg(0.8)
	for _, alg := range []core.Algorithm{core.MultiLog(), core.MultiLogOpt()} {
		gen := workload.NewSkew(cfg.UserPages(), 0.8, 42)
		res, err := Run(cfg, alg, gen, RunOptions{UpdateMultiple: 15})
		if err != nil {
			t.Fatal(err)
		}
		if res.Wamp <= 0 || math.IsInf(res.Wamp, 0) || math.IsNaN(res.Wamp) {
			t.Errorf("%s produced bogus Wamp %v", alg.Name, res.Wamp)
		}
		// Cleaning one segment per cycle: cycles == segments cleaned.
		if res.CleanCycles != res.SegmentsCleaned {
			t.Errorf("%s cleans 1/cycle but cleaned %d in %d cycles",
				alg.Name, res.SegmentsCleaned, res.CleanCycles)
		}
	}
}

// TestMultiLogOptUniformActsLikeAge verifies §6.2.2: with exact frequencies
// and a uniform workload multi-log-opt degenerates to age-based cleaning.
func TestMultiLogOptUniformActsLikeAge(t *testing.T) {
	cfg := smallCfg(0.8)
	gen1 := workload.NewUniform(cfg.UserPages(), 42)
	mlo, err := Run(cfg, core.MultiLogOpt(), gen1, RunOptions{UpdateMultiple: 20})
	if err != nil {
		t.Fatal(err)
	}
	gen2 := workload.NewUniform(cfg.UserPages(), 42)
	age, err := Run(cfg, core.Age(), gen2, RunOptions{UpdateMultiple: 20})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(mlo.Wamp-age.Wamp) / age.Wamp; rel > 0.08 {
		t.Errorf("multi-log-opt uniform Wamp=%.3f vs age %.3f (rel %.3f)",
			mlo.Wamp, age.Wamp, rel)
	}
}

func TestWriteBufferSweepImproves(t *testing.T) {
	// Figure 4 shape at small scale: a sorted write buffer lowers Wamp
	// substantially versus no buffer.
	base := tinyCfg(0.8)
	wamp := func(w int) float64 {
		cfg := base
		cfg.WriteBufferSegs = w
		gen := workload.NewZipf(cfg.UserPages(), 0.99, 42)
		res, err := Run(cfg, core.MDC(), gen, RunOptions{UpdateMultiple: 15})
		if err != nil {
			t.Fatal(err)
		}
		return res.Wamp
	}
	w0, w16 := wamp(0), wamp(16)
	if !(w16 < w0*0.8) {
		t.Errorf("16-segment buffer (%.3f) should clearly beat none (%.3f)", w16, w0)
	}
}

func TestTraceReplayRun(t *testing.T) {
	// A synthetic finite trace exercises the replay path end to end.
	cfg := tinyCfg(0.7)
	p := cfg.UserPages()
	gen := workload.NewZipf(p, 0.99, 9)
	writes := make([]uint32, 6*p)
	for i := range writes {
		w, _ := gen.Next()
		writes[i] = w
	}
	rep := workload.NewReplay("synthetic-trace", writes, p, p, true)
	res, err := Run(cfg, core.MDCOpt(), rep, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.LogicalUpdates != uint64(len(writes)) {
		t.Errorf("replayed %d updates, want %d", res.LogicalUpdates, len(writes))
	}
	if res.Wamp <= 0 {
		t.Errorf("trace replay Wamp = %v", res.Wamp)
	}
	if !strings.Contains(res.String(), "synthetic-trace") {
		t.Errorf("Result.String() missing workload: %s", res.String())
	}
}

func TestResultCostSeg(t *testing.T) {
	cfg := tinyCfg(0.8)
	gen := workload.NewUniform(cfg.UserPages(), 1)
	res, err := Run(cfg, core.Greedy(), gen, RunOptions{UpdateMultiple: 8})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 / res.MeanEAtClean; math.Abs(res.CostSeg-want) > 1e-9 {
		t.Errorf("CostSeg=%v, want %v", res.CostSeg, want)
	}
}
