// Package sim implements the log-structured store simulator of the paper's
// evaluation (§6.1.1). Like the paper's simulator it records page identities,
// not page contents: cleaning cost and write amplification depend only on
// which page frames hold current versions.
//
// The engine owns physical segments, the logical-page mapping table, a user
// write buffer that sorts (separates) writes by update frequency, and the
// cleaning loop; victim selection and write routing are delegated to a
// core.Algorithm so that every policy of the paper runs on identical
// mechanics.
package sim

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/core"
	"repro/internal/workload"
)

// Config sizes the simulated store. The zero value is unusable; call
// (*Config).withDefaults via New, which applies the paper's defaults
// (4 KB pages, 512-page/2 MB segments, cleaning triggered below 32 free
// segments, 64 segments cleaned per cycle, 16-segment sort buffer).
type Config struct {
	// PageSize is the page size in bytes (paper: 4096).
	PageSize int64
	// SegmentPages is S, pages per segment (paper: 512, i.e. 2 MB segments).
	SegmentPages int
	// NumSegments is the physical segment count. The paper simulates a
	// 100 GB store (51200 segments); its footnote 2 notes the absolute size
	// does not affect write amplification, so smaller defaults are fine.
	NumSegments int
	// FillFactor is F, the fraction of physical pages visible to the user.
	FillFactor float64
	// FreeLowWater triggers cleaning when the free-segment count falls
	// below it (paper: 32).
	FreeLowWater int
	// CleanBatch is the number of segments cleaned per cycle (paper: 64)
	// unless the algorithm overrides it (multi-log cleans 1).
	CleanBatch int
	// WriteBufferSegs is the user write buffer size in segments (Figure 4;
	// 16 is the paper's near-optimal point). 0 disables buffering: writes
	// stream straight to segments with neither sorting nor absorption.
	WriteBufferSegs int
}

func (c Config) withDefaults() Config {
	if c.PageSize == 0 {
		c.PageSize = 4096
	}
	if c.SegmentPages == 0 {
		c.SegmentPages = 512
	}
	if c.NumSegments == 0 {
		c.NumSegments = 2048
	}
	if c.FreeLowWater == 0 {
		c.FreeLowWater = 32
	}
	if c.CleanBatch == 0 {
		c.CleanBatch = 64
	}
	if c.WriteBufferSegs < 0 {
		c.WriteBufferSegs = 0
	}
	return c
}

// UserPages returns P, the number of user-visible pages implied by the
// configuration: FillFactor times the physical page count.
func (c Config) UserPages() int {
	return int(c.FillFactor * float64(c.NumSegments) * float64(c.SegmentPages))
}

const bufTag = uint64(1) << 63

// bufEnt is a page version pending in the write buffer or being relocated by
// the cleaner, with the frequency keys used for separation and the update
// interval observed at write time (multi-log's estimator).
type bufEnt struct {
	page uint32
	up2  float64
	rate float64
	est  uint64
}

type openSeg struct {
	id     int32
	fill   int
	up2Sum float64
}

// Sim is a simulated log-structured store instance.
type Sim struct {
	cfg Config
	alg core.Algorithm
	gen workload.Generator

	exact bool // exact-rate oracle active

	meta  []core.SegmentMeta
	slots []uint32 // seg*S+slot -> page id; valid iff pageLoc back-points

	// pageLoc maps a page id to its current location: 0 = never written,
	// bufTag|idx = write buffer entry, otherwise (seg*S+slot)+1.
	pageLoc   []uint64
	lastWrite []uint64  // previous user-update tick per page (0 = none)
	ivlEst    []uint32  // last observed update interval per page (0 = none)
	rates     []float64 // exact per-page update rates (nil without oracle)

	free []int32
	open []openSeg // indexed by stream id

	buf       []bufEnt
	bufCap    int
	bufMinUp2 float64

	unow    uint64
	sealSeq uint64
	inGC    bool
	seen    core.StreamSet // streams ever appended to (router reserve)

	scratchVictims []int32
	scratchPages   []bufEnt

	// counters, reset by ResetCounters
	userPhys, gcPhys  uint64
	logical, absorbed uint64
	cleaned, cycles   uint64
	sumEAtClean       float64
	zeroGainStreak    int
}

// New builds a simulator for the given configuration, algorithm and
// workload. It validates that the configuration leaves enough slack segments
// for the cleaning reserve and the algorithm's append streams.
func New(cfg Config, alg core.Algorithm, gen workload.Generator) (*Sim, error) {
	cfg = cfg.withDefaults()
	if cfg.FillFactor <= 0 || cfg.FillFactor >= 1 {
		return nil, fmt.Errorf("sim: fill factor %v outside (0,1)", cfg.FillFactor)
	}
	p := gen.Universe()
	capPages := cfg.NumSegments * cfg.SegmentPages
	want := cfg.UserPages()
	if p > want {
		return nil, fmt.Errorf("sim: workload universe %d pages exceeds fill-factor budget %d (F=%.2f of %d physical)",
			p, want, cfg.FillFactor, capPages)
	}
	streams := 2
	if alg.Router != nil {
		// Exactly one open segment per declared stream: a router that is
		// off by one must fail the explicit appendPage check ("router must
		// clamp its bands"), not quietly fill a phantom slack stream.
		streams = int(alg.Router.Streams())
	}
	slackSegs := cfg.NumSegments - (p+cfg.SegmentPages-1)/cfg.SegmentPages
	if slackSegs < cfg.FreeLowWater+streams+2 {
		return nil, fmt.Errorf("sim: only %d slack segments; need > FreeLowWater(%d) + streams(%d) + 2",
			slackSegs, cfg.FreeLowWater, streams)
	}
	s := &Sim{
		cfg:       cfg,
		alg:       alg,
		gen:       gen,
		meta:      make([]core.SegmentMeta, cfg.NumSegments),
		slots:     make([]uint32, cfg.NumSegments*cfg.SegmentPages),
		pageLoc:   make([]uint64, p),
		lastWrite: make([]uint64, p),
		ivlEst:    make([]uint32, p),
		free:      make([]int32, 0, cfg.NumSegments),
		// The open-segment table is sized up front and never grows:
		// appendPage holds a pointer into it across nested cleaning, so a
		// reallocation there would write through a stale array.
		open:      make([]openSeg, streams),
		bufCap:    cfg.WriteBufferSegs * cfg.SegmentPages,
		bufMinUp2: math.Inf(1),
	}
	for i := range s.open {
		s.open[i].id = -1
	}
	for i := range s.meta {
		s.meta[i].Capacity = int64(cfg.SegmentPages) * cfg.PageSize
		s.meta[i].Free = s.meta[i].Capacity
	}
	for i := cfg.NumSegments - 1; i >= 0; i-- {
		s.free = append(s.free, int32(i))
	}
	if alg.Exact {
		if gen.Rate(0) < 0 {
			return nil, fmt.Errorf("sim: algorithm %s needs an exact-rate oracle but workload %s has none",
				alg.Name, gen.Name())
		}
		s.exact = true
		s.rates = make([]float64, p)
		for i := range s.rates {
			s.rates[i] = gen.Rate(uint32(i))
		}
	}
	// The user write buffer exists to SORT user writes by update frequency
	// (§5.3, Figure 4); algorithms that do not separate user writes stream
	// them straight to segments. This matches the paper's controls: §6.2.1
	// calls victim selection "the only difference between greedy and
	// MDC-no-sep-user-GC", which only holds if neither buffers.
	if !alg.SortUser {
		s.bufCap = 0
	}
	if s.bufCap > 0 {
		s.buf = make([]bufEnt, 0, s.bufCap)
	}
	return s, nil
}

// Now returns the current update-count clock.
func (s *Sim) Now() uint64 { return s.unow }

// Write applies one user update to page p: it invalidates the prior version,
// computes the carried up2 per §5.2.2, and stages the new version in the
// write buffer (or appends it directly when unbuffered).
func (s *Sim) Write(p uint32) {
	s.unow++
	s.logical++

	prevLast := s.lastWrite[p]
	s.lastWrite[p] = s.unow

	var carried float64
	switch loc := s.pageLoc[p]; {
	case loc == 0:
		// First write: adopt the oldest ("coldish") up2 of the batch being
		// processed (§5.2.2), zero when there is no history at all.
		if s.bufMinUp2 != math.Inf(1) {
			carried = s.bufMinUp2
		}
	case loc&bufTag != 0:
		// Still in the write buffer: absorb the re-write in place.
		e := &s.buf[loc&^bufTag]
		e.up2 = core.NextUp2(e.up2, s.unow)
		s.noteInterval(p, s.unow-prevLast)
		e.est = uint64(s.ivlEst[p])
		s.absorbed++
		if e.up2 < s.bufMinUp2 {
			s.bufMinUp2 = e.up2
		}
		return
	default:
		g := loc - 1
		seg := int32(g / uint64(s.cfg.SegmentPages))
		m := &s.meta[seg]
		carried = core.NextUp2(m.Up2, s.unow)
		m.Up2 = carried
		m.Live--
		m.Free += s.cfg.PageSize
		if s.exact {
			m.RateSum -= s.rates[p]
		}
		// Clear the mapping immediately: on the unbuffered path the append
		// below can trigger cleaning, and a stale back-pointer would make
		// the cleaner relocate the version we just invalidated.
		s.pageLoc[p] = 0
	}

	var rate float64 = -1
	if s.exact {
		rate = s.rates[p]
	}
	if prevLast != 0 {
		est := s.unow - prevLast
		if est == 0 {
			est = 1
		}
		s.noteInterval(p, est)
	}
	smoothed := uint64(s.ivlEst[p])
	if s.bufCap > 0 {
		s.buf = append(s.buf, bufEnt{page: p, up2: carried, rate: rate, est: smoothed})
		s.pageLoc[p] = bufTag | uint64(len(s.buf)-1)
		if carried < s.bufMinUp2 {
			s.bufMinUp2 = carried
		}
		if len(s.buf) >= s.bufCap {
			s.flush()
		}
		return
	}
	s.appendPage(s.routeUser(smoothed, rate), p, carried, rate)
	s.userPhys++
}

// flush sorts (when the algorithm separates user writes) and drains the
// write buffer into segments.
func (s *Sim) flush() {
	if s.alg.SortUser {
		sortByFrequency(s.buf, s.exact)
	}
	for _, e := range s.buf {
		// Absorption keeps at most one live entry per page, so every entry
		// here is the page's current version.
		s.appendPage(s.routeUser(e.est, e.rate), e.page, e.up2, e.rate)
		s.userPhys++
	}
	s.buf = s.buf[:0]
	s.bufMinUp2 = math.Inf(1)
}

// sortByFrequency orders a batch coldest-first: by exact rate ascending when
// the oracle is active, else by carried up2 ascending (§5.3). Page id breaks
// ties deterministically.
func sortByFrequency(b []bufEnt, exact bool) {
	if exact {
		slices.SortFunc(b, func(x, y bufEnt) int {
			switch {
			case x.rate < y.rate:
				return -1
			case x.rate > y.rate:
				return 1
			default:
				return int(x.page) - int(y.page)
			}
		})
		return
	}
	slices.SortFunc(b, func(x, y bufEnt) int {
		switch {
		case x.up2 < y.up2:
			return -1
		case x.up2 > y.up2:
			return 1
		default:
			return int(x.page) - int(y.page)
		}
	})
}

// routeUser picks the append stream for a user write: the algorithm's router
// when present (multi-log), else stream 0. est is the page's update interval
// observed when the write entered the system.
func (s *Sim) routeUser(est uint64, rate float64) int32 {
	if s.alg.Router == nil {
		return 0
	}
	return s.alg.Router.Route(est, rate)
}

// noteInterval records a page's observed update interval (the multi-log
// frequency estimate) as the running midpoint of successive observations —
// a single exponential interval sample has coefficient of variation 1, far
// too noisy to band pages by. Relocations must NOT touch the estimate: a
// cleaning move says nothing about how often the page is updated, and
// estimating from "time since last write" at relocation would let cleaning
// churn pollute the hot logs with its own young victims.
func (s *Sim) noteInterval(p uint32, est uint64) {
	s.ivlEst[p] = core.SmoothInterval(s.ivlEst[p], est)
}

// routeGC picks the append stream for a relocated page: the router when
// present (fed the page's last known update interval), else the dedicated
// GC stream 1.
func (s *Sim) routeGC(p uint32, rate float64) int32 {
	if s.alg.Router == nil {
		return 1
	}
	return s.alg.Router.Route(uint64(s.ivlEst[p]), rate)
}

// appendPage writes one page version into the open segment of a stream,
// allocating and sealing segments as needed.
//
// Ordering is delicate: cleaning must run BEFORE the open-table entry is
// read, because the cleaner's own relocations may install (and partially
// fill) an open segment for this very stream; taking the pointer first and
// allocating afterwards would orphan that segment in the open state.
func (s *Sim) appendPage(stream int32, p uint32, carried float64, rate float64) {
	if int(stream) >= len(s.open) {
		panic(fmt.Sprintf("sim: stream %d outside pre-sized open table (%d); router must clamp its bands", stream, len(s.open)))
	}
	s.seen.Note(stream)
	if s.open[stream].id < 0 && !s.inGC && len(s.free) < s.lowWater() {
		s.runGC(stream)
	}
	o := &s.open[stream]
	if o.id < 0 {
		o.id = s.popFree(stream)
		o.fill = 0
		o.up2Sum = 0
	}
	m := &s.meta[o.id]
	g := uint64(o.id)*uint64(s.cfg.SegmentPages) + uint64(o.fill)
	s.slots[g] = p
	s.pageLoc[p] = g + 1
	o.fill++
	o.up2Sum += carried
	m.Live++
	m.Free -= s.cfg.PageSize
	if s.exact && rate >= 0 {
		m.RateSum += rate
	}
	if o.fill == s.cfg.SegmentPages {
		m.Up2 = o.up2Sum / float64(s.cfg.SegmentPages)
		m.State = core.SegSealed
		s.sealSeq++
		m.SealSeq = s.sealSeq
		m.SealTime = s.unow
		o.id = -1
	}
}

// popFree takes a segment from the free pool and opens it for a stream. It
// never triggers cleaning itself (appendPage does that first); the cleaner's
// free-before-consume ordering guarantees the pool cannot drain mid-cycle.
func (s *Sim) popFree(stream int32) int32 {
	if len(s.free) == 0 {
		panic(fmt.Sprintf("sim: out of segments (alg=%s, stream=%d): cleaning cannot reclaim space", s.alg.Name, stream))
	}
	id := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	m := &s.meta[id]
	*m = core.SegmentMeta{
		Capacity: int64(s.cfg.SegmentPages) * s.cfg.PageSize,
		Free:     int64(s.cfg.SegmentPages) * s.cfg.PageSize,
		Stream:   stream,
		State:    core.SegOpen,
	}
	return id
}

// lowWater returns the effective free-pool threshold. Routed algorithms
// (multi-log) can open one segment per frequency band while relocating a
// single victim, so the reserve must additionally cover one segment per
// stream the workload actually uses; otherwise cleaning itself can drain
// the pool. Counting only observed streams keeps the reserve honest: under
// a uniform workload with exact rates multi-log uses one log and behaves
// like age-based cleaning, which an all-bands reserve would distort at
// small store sizes. The count is monotone, so the threshold never flaps.
func (s *Sim) lowWater() int {
	lw := s.cfg.FreeLowWater
	if s.alg.Router != nil {
		lw += s.seen.Count()
	}
	return lw
}

// batch returns the number of segments one cleaning cycle processes.
func (s *Sim) batch() int {
	if s.alg.CleanPerCycle > 0 {
		return s.alg.CleanPerCycle
	}
	return s.cfg.CleanBatch
}

// runGC cleans segments until the free pool is back above the low-water
// mark. Each cycle asks the policy for a victim batch, gathers the victims'
// live pages (carrying the source segments' up2 per §5.2.2), frees the
// victims, separates the relocation batch by frequency when the algorithm
// asks for it, and rewrites the pages.
func (s *Sim) runGC(trigger int32) {
	s.inGC = true
	defer func() { s.inGC = false }()

	for len(s.free) < s.lowWater() {
		view := core.View{Now: s.unow, Segs: s.meta, TriggerStream: trigger}
		victims := s.alg.Policy.Victims(view, s.batch(), s.scratchVictims[:0])
		s.scratchVictims = victims[:0]
		if len(victims) == 0 {
			panic(fmt.Sprintf("sim: policy %s returned no victims with %d free segments", s.alg.Name, len(s.free)))
		}
		s.cycles++

		pages := s.scratchPages[:0]
		for _, v := range victims {
			m := &s.meta[v]
			if m.State != core.SegSealed {
				panic(fmt.Sprintf("sim: policy %s selected non-sealed segment %d", s.alg.Name, v))
			}
			s.sumEAtClean += m.Emptiness()
			s.cleaned++
			base := uint64(v) * uint64(s.cfg.SegmentPages)
			for i := 0; i < s.cfg.SegmentPages; i++ {
				g := base + uint64(i)
				p := s.slots[g]
				if s.pageLoc[p] == g+1 {
					r := -1.0
					if s.exact {
						r = s.rates[p]
					}
					pages = append(pages, bufEnt{page: p, up2: m.Up2, rate: r})
				}
			}
			m.State = core.SegFree
			m.Live = 0
			m.Free = m.Capacity
			m.RateSum = 0
			s.free = append(s.free, v)
		}

		if s.alg.SortGC {
			sortByFrequency(pages, s.exact)
		}
		for _, e := range pages {
			s.appendPage(s.routeGC(e.page, e.rate), e.page, e.up2, e.rate)
			s.gcPhys++
		}
		s.scratchPages = pages[:0]

		// Progress guard: a cycle reclaims space iff its victims had empty
		// page frames. Cleaning a completely full segment is legal (the age
		// policy legitimately rotates past frozen segments) but an unbroken
		// run of them is a livelock worth failing loudly on.
		if reclaimed := len(victims)*s.cfg.SegmentPages - len(pages); reclaimed <= 0 {
			s.zeroGainStreak++
			if s.zeroGainStreak > 2*s.cfg.NumSegments {
				panic(fmt.Sprintf("sim: cleaning livelock under %s: only full segments cleaned in %d consecutive cycles", s.alg.Name, s.zeroGainStreak))
			}
		} else {
			s.zeroGainStreak = 0
		}
	}
}

// ResetCounters zeroes the measurement counters (end of warmup).
func (s *Sim) ResetCounters() {
	s.userPhys, s.gcPhys, s.logical, s.absorbed = 0, 0, 0, 0
	s.cleaned, s.cycles, s.sumEAtClean = 0, 0, 0
}

// FreeSegments returns the current free-pool size.
func (s *Sim) FreeSegments() int { return len(s.free) }

// Location reports where page p currently lives: in the write buffer
// (buffered=true), in segment seg at slot slot, or nowhere (ok=false).
func (s *Sim) Location(p uint32) (seg int32, slot int, buffered, ok bool) {
	if int(p) >= len(s.pageLoc) {
		return 0, 0, false, false
	}
	switch loc := s.pageLoc[p]; {
	case loc == 0:
		return 0, 0, false, false
	case loc&bufTag != 0:
		return 0, 0, true, true
	default:
		g := loc - 1
		return int32(g / uint64(s.cfg.SegmentPages)), int(g % uint64(s.cfg.SegmentPages)), false, true
	}
}

// DebugSegStates summarizes segment states for diagnostics.
func (s *Sim) DebugSegStates() string {
	var nfree, nopen, nsealed, sealedFull int
	for i := range s.meta {
		switch s.meta[i].State {
		case core.SegFree:
			nfree++
		case core.SegOpen:
			nopen++
		case core.SegSealed:
			nsealed++
			if s.meta[i].Free == 0 {
				sealedFull++
			}
		}
	}
	return fmt.Sprintf("unow=%d free=%d open=%d sealed=%d sealedFull=%d bufLen=%d",
		s.unow, nfree, nopen, nsealed, sealedFull, len(s.buf))
}

// DebugStreams reports per-stream segment counts and emptiness for
// diagnostics: sealed count, mean E of sealed, open fill.
func (s *Sim) DebugStreams() string {
	type agg struct {
		sealed int
		esum   float64
		open   int
	}
	byStream := map[int32]*agg{}
	for i := range s.meta {
		m := &s.meta[i]
		if m.State == core.SegFree {
			continue
		}
		a := byStream[m.Stream]
		if a == nil {
			a = &agg{}
			byStream[m.Stream] = a
		}
		if m.State == core.SegSealed {
			a.sealed++
			a.esum += m.Emptiness()
		} else {
			a.open++
		}
	}
	out := ""
	for st := int32(0); st < 32; st++ {
		if a := byStream[st]; a != nil {
			meanE := 0.0
			if a.sealed > 0 {
				meanE = a.esum / float64(a.sealed)
			}
			out += fmt.Sprintf("  band %2d: sealed=%3d meanE=%.3f open=%d\n", st, a.sealed, meanE, a.open)
		}
	}
	return out
}

// View exposes the current segment metadata as a policy view (benchmarks
// and diagnostics).
func (s *Sim) View() core.View {
	return core.View{Now: s.unow, Segs: s.meta}
}
