package sim

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/workload"
)

// Result summarizes one simulation run, measured after warmup.
//
// Two write-amplification ratios are reported. Wamp divides the relocated
// (GC) page writes by the *user updates issued*; this is the quantity the
// paper's figures plot — it is what makes the Figure 4 write-buffer sweep
// fall steeply, because updates coalesced inside the write buffer amplify
// nothing. WampPhysical divides by the user pages that physically reached
// segments; it equals equation 2's (1-E)/E and matches Wamp exactly when
// the buffer is disabled.
type Result struct {
	Algorithm string
	Workload  string
	Fill      float64

	// LogicalUpdates counts user updates issued during measurement.
	LogicalUpdates uint64
	// AbsorbedUpdates counts updates coalesced inside the write buffer.
	AbsorbedUpdates uint64
	// UserPageWrites counts user pages physically written to segments.
	UserPageWrites uint64
	// GCPageWrites counts live pages relocated by cleaning.
	GCPageWrites uint64
	// SegmentsCleaned and CleanCycles describe cleaner activity.
	SegmentsCleaned uint64
	CleanCycles     uint64
	// Wamp is GCPageWrites / LogicalUpdates (the paper's figure metric).
	Wamp float64
	// WampPhysical is GCPageWrites / UserPageWrites (equation 2).
	WampPhysical float64
	// MeanEAtClean is the average emptiness of segments when cleaned — the
	// quantity Table 1 compares against the analytic fixpoint E.
	MeanEAtClean float64
	// CostSeg is the paper's equation 1 cost, 2/E, from MeanEAtClean.
	CostSeg float64
}

func (r Result) String() string {
	return fmt.Sprintf("%s/%s F=%.3f: Wamp=%.3f (phys %.3f) E@clean=%.3f (updates=%d user=%d gc=%d cleaned=%d)",
		r.Algorithm, r.Workload, r.Fill, r.Wamp, r.WampPhysical, r.MeanEAtClean,
		r.LogicalUpdates, r.UserPageWrites, r.GCPageWrites, r.SegmentsCleaned)
}

// snapshot captures the current counters into a Result.
func (s *Sim) snapshot() Result {
	r := Result{
		Algorithm:       s.alg.Name,
		Workload:        s.gen.Name(),
		Fill:            s.cfg.FillFactor,
		LogicalUpdates:  s.logical,
		AbsorbedUpdates: s.absorbed,
		UserPageWrites:  s.userPhys,
		GCPageWrites:    s.gcPhys,
		SegmentsCleaned: s.cleaned,
		CleanCycles:     s.cycles,
	}
	if s.logical > 0 {
		r.Wamp = float64(s.gcPhys) / float64(s.logical)
	}
	if s.userPhys > 0 {
		r.WampPhysical = float64(s.gcPhys) / float64(s.userPhys)
	}
	if s.cleaned > 0 {
		r.MeanEAtClean = s.sumEAtClean / float64(s.cleaned)
	}
	if r.MeanEAtClean > 0 {
		r.CostSeg = 2 / r.MeanEAtClean
	} else {
		r.CostSeg = math.Inf(1)
	}
	return r
}

// RunOptions controls the driver loop around a Sim.
type RunOptions struct {
	// UpdateMultiple sizes the update stream as a multiple of the user page
	// count (the paper writes 100x the store size so the write
	// amplification stabilizes; 50 with half discarded as warmup matches
	// the stabilized regime at a fraction of the cost). Ignored when the
	// workload is a finite trace, which always runs to exhaustion.
	UpdateMultiple float64
	// WarmupFraction of the updates are excluded from measurement.
	WarmupFraction float64
}

func (o RunOptions) withDefaults() RunOptions {
	if o.UpdateMultiple == 0 {
		o.UpdateMultiple = 50
	}
	if o.WarmupFraction == 0 {
		o.WarmupFraction = 0.5
	}
	return o
}

// Run builds a simulator and drives it to completion: preload the workload's
// initial pages (ids 0..PreloadPages-1), apply the update stream (sized by
// opts for synthetic workloads, to exhaustion for traces), reset counters at
// the end of warmup, and return the measurement-window result.
func Run(cfg Config, alg core.Algorithm, gen workload.Generator, opts RunOptions) (Result, error) {
	opts = opts.withDefaults()
	s, err := New(cfg, alg, gen)
	if err != nil {
		return Result{}, err
	}
	for p := 0; p < gen.PreloadPages(); p++ {
		s.Write(uint32(p))
	}

	if replay, ok := gen.(*workload.Replay); ok {
		// Finite trace: measure the whole running phase, like §6.3.
		s.ResetCounters()
		for {
			p, ok := replay.Next()
			if !ok {
				break
			}
			s.Write(p)
		}
		return s.snapshot(), nil
	}

	total := uint64(opts.UpdateMultiple * float64(gen.Universe()))
	warm := uint64(float64(total) * opts.WarmupFraction)
	var i uint64
	for ; i < warm; i++ {
		p, ok := gen.Next()
		if !ok {
			break
		}
		s.Write(p)
	}
	s.ResetCounters()
	for ; i < total; i++ {
		p, ok := gen.Next()
		if !ok {
			break
		}
		s.Write(p)
	}
	return s.snapshot(), nil
}
