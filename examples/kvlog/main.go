// KV log example: an in-memory log-structured key-value store (RAMCloud
// style log-structured memory) holding variable-size session records. Hot
// sessions are updated constantly; MDC's variable-size declining-cost
// priority (paper §4.4) keeps the byte-level write amplification of the
// cleaner low compared to greedy.
//
//	go run ./examples/kvlog
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"repro"
)

func main() {
	log.SetFlags(0)

	for _, algName := range []string{"greedy", "cost-benefit", "MDC"} {
		alg, err := repro.AlgorithmByName(algName)
		if err != nil {
			log.Fatal(err)
		}
		kv, err := repro.NewKV(repro.KVOptions{
			SegmentBytes: 64 << 10,
			MaxSegments:  64, // 4 MiB arena
			Algorithm:    alg,
		})
		if err != nil {
			log.Fatal(err)
		}

		// ~3 MiB of live sessions (fill ~0.75), sizes 64..576 bytes,
		// loaded through the batch API: one lock hold and one admission
		// check per 256 sessions, and each Commit is all-or-nothing.
		r := rand.New(rand.NewPCG(7, 7))
		session := func(id int) string { return fmt.Sprintf("session:%06d", id) }
		blob := make([]byte, 1024)
		const sessions = 10000
		b := repro.NewKVBatch()
		for id := 0; id < sessions; id++ {
			b.Put(session(id), blob[:64+id%512])
			if b.Len() == 256 || id == sessions-1 {
				if err := kv.Commit(b); err != nil {
					log.Fatal(err)
				}
				b.Reset()
			}
		}
		// Skewed updates: 10% of sessions take 90% of the traffic.
		for i := 0; i < 200000; i++ {
			id := r.IntN(sessions)
			if r.Float64() < 0.9 {
				id = r.IntN(sessions / 10)
			}
			if err := kv.Put(session(id), blob[:64+(id+i)%512]); err != nil {
				log.Fatal(err)
			}
		}
		st := kv.Stats()
		fmt.Printf("%-13s live %.1f MiB / %.1f MiB, cleaner moved %.1f MiB for %.1f MiB written (byte Wamp %.3f, E@GC %.3f)\n",
			algName,
			float64(st.LiveBytes)/(1<<20), float64(st.CapacityBytes)/(1<<20),
			float64(st.GCBytes)/(1<<20), float64(st.UserBytes)/(1<<20),
			st.WriteAmp, st.MeanEAtClean)
		kv.Close()
	}
	fmt.Println("\nMDC waits for hot segments to empty and clusters relocations by")
	fmt.Println("estimated update frequency, so it moves fewer bytes per byte written.")
}
