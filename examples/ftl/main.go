// FTL example: an SSD flash translation layer is a log-structured store
// whose "segments" are erase blocks, and whose write amplification directly
// burns flash endurance (paper §1). This example sizes a simulated FTL like
// a consumer SSD slice (4 KB pages, 2 MB erase blocks, 7% over-provisioning
// — i.e. fill factor 0.93) and compares cleaning policies under a skewed
// (Zipfian) update workload, reporting the flash-lifetime implications.
//
//	go run ./examples/ftl
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
)

func main() {
	log.SetFlags(0)

	// A small slice of an SSD: 512 blocks x 512 pages x 4 KB = 1 GiB of
	// flash with 7% over-provisioning (a typical consumer configuration).
	cfg := repro.SimConfig{
		PageSize:        4096,
		SegmentPages:    128,
		NumSegments:     2048,
		FillFactor:      0.93,
		FreeLowWater:    6,
		CleanBatch:      16,
		WriteBufferSegs: 8, // the drive's RAM write buffer
	}
	opts := repro.SimRunOptions{UpdateMultiple: 20, WarmupFraction: 0.5}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "policy\tWamp\tE@GC\ttotal flash writes per user write\trelative lifetime")
	var baseline float64
	for _, name := range []string{"age", "greedy", "cost-benefit", "multi-log", "MDC"} {
		alg, err := repro.AlgorithmByName(name)
		if err != nil {
			log.Fatal(err)
		}
		gen := repro.ZipfWorkload(cfg.UserPages(), 0.99, 42)
		res, err := repro.RunSim(cfg, alg, gen, opts)
		if err != nil {
			log.Fatal(err)
		}
		// Every user write costs 1 + Wamp flash page programs.
		total := 1 + res.Wamp
		if name == "age" {
			baseline = total
		}
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.3f\t%.2fx\n",
			name, res.Wamp, res.MeanEAtClean, total, baseline/total)
	}
	w.Flush()
	fmt.Println("\nrelative lifetime = flash programs under age-based cleaning / programs under this policy")
	fmt.Println("(same host workload; fewer GC relocations = less wear, per paper §1.2)")
}
