// Quickstart: open a durable log-structured page store with background
// cleaning and commit-level durability, write pages in atomic batches
// (group commit coalesces the fsyncs), watch the MDC cleaner reclaim space
// off the write path, and recover after a restart.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"os"

	"repro"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "lsstore-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	opts := repro.StoreOptions{
		Dir:          dir,
		PageSize:     4096,
		SegmentPages: 64,
		MaxSegments:  64, // ~16 MB capacity
		// Algorithm defaults to repro.MDC().
		// Cleaning runs in a background goroutine driven by free-pool
		// watermarks; writes are only paced if free space nears
		// exhaustion. Set false to clean synchronously inside writes.
		BackgroundClean: true,
		// Every commit returns durable: batches pay one coalesced group
		// fsync instead of one per page. DurSeal syncs only at segment
		// seals; DurNone (the default) never syncs.
		Durability: repro.DurCommit,
	}
	st, err := repro.OpenStore(opts)
	if err != nil {
		log.Fatal(err)
	}

	// Fill to ~75% with live pages, then update a hot subset so the
	// cleaner has work: pages are never updated in place, so every rewrite
	// leaves a garbage version behind for the cleaner. Updates go through
	// the batch API: each Apply is atomic (all-or-nothing, even across a
	// crash at DurCommit) and amortizes the lock, admission and fsync over
	// the whole batch.
	const livePages = 3000
	page := make([]byte, 4096)
	b := repro.NewStoreBatch()
	for id := uint32(0); id < livePages; id++ {
		fillPage(page, id, 0)
		b.Write(id, page) // the batch copies the page; the buffer is reusable
		if b.Len() == 128 || id == livePages-1 {
			if err := st.Apply(b); err != nil {
				log.Fatalf("preload batch: %v", err)
			}
			b.Reset()
		}
	}
	r := rand.New(rand.NewPCG(1, 2))
	for i := 1; i <= 20000; i++ {
		id := uint32(r.IntN(livePages / 10)) // hot 10%
		fillPage(page, id, i)
		b.Write(id, page)
		if b.Len() == 64 {
			if err := st.Apply(b); err != nil {
				log.Fatalf("update batch: %v", err)
			}
			b.Reset()
		}
	}
	if err := st.Apply(b); err != nil {
		log.Fatalf("final batch: %v", err)
	}

	s := st.Stats()
	fmt.Printf("live pages       %d of %d capacity (fill %.2f)\n", s.LivePages, s.CapacityPages, s.FillFactor)
	fmt.Printf("user writes      %d in %d batches\n", s.UserWrites, s.BatchesApplied)
	fmt.Printf("durability       %s: %d commits served by %d group fsync rounds\n",
		s.Durability, s.Commits, s.FsyncRounds)
	fmt.Printf("GC relocations   %d (write amplification %.3f)\n", s.GCWrites, s.WriteAmp)
	fmt.Printf("segments cleaned %d at mean emptiness %.3f\n", s.SegmentsCleaned, s.MeanEAtClean)
	fmt.Printf("background clean %d cycles, %d segments reclaimed, %.1f MB relocated, writers stalled %v\n",
		s.Cleaner.Cycles, s.Cleaner.SegmentsReclaimed,
		float64(s.Cleaner.BytesRelocated)/1e6, s.Cleaner.WriterStallTime)

	if err := st.Close(); err != nil {
		log.Fatal(err)
	}

	// Reopen: recovery rebuilds the page table by scanning the segments
	// and keeping each page's highest-sequence record.
	st2, err := repro.OpenStore(opts)
	if err != nil {
		log.Fatalf("recovery: %v", err)
	}
	defer st2.Close()
	buf := make([]byte, 4096)
	if err := st2.ReadPage(7, buf); err != nil {
		log.Fatalf("read after recovery: %v", err)
	}
	fmt.Printf("recovered        %d live pages; page 7 readable, checksum verified\n",
		st2.Stats().LivePages)
}

// fillPage stamps a recognizable per-version pattern.
func fillPage(p []byte, id uint32, version int) {
	for i := range p {
		p[i] = byte(int(id) + version + i)
	}
}
