// TPC-C replay example: the paper's §6.3 experiment in miniature. Runs the
// TPC-C workload against the B+-tree storage engine with a CLOCK buffer
// cache, captures the page-write I/O trace from dirty evictions and
// checkpoints, then replays the trace through the log-structure simulator
// under several cleaning policies.
//
//	go run ./examples/tpccreplay
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
	"repro/internal/tpcc"
)

func main() {
	log.SetFlags(0)

	// A scaled-down TPC-C database (see DESIGN.md for the substitution
	// rationale: the paper's scale factors 350-560 with a 4 GB cache are
	// reduced proportionally, preserving the trace's skewed and shifting
	// page-update pattern).
	eng := tpcc.NewEngine(tpcc.Config{Warehouses: 2, Seed: 7})
	eng.Run(20000)
	tr := eng.Trace()
	st := eng.Stats()
	fmt.Printf("TPC-C: %d pages after load, %d at end, %d traced writes, cache hit %.3f\n\n",
		tr.Preload, tr.Universe, len(tr.Writes), st.Pool.HitRatio())

	const fill = 0.8
	const segPages = 64
	numSegs := int(float64(tr.Universe)/(fill*segPages)) + 1

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "policy\tWamp\tE@GC\tsegments cleaned")
	for _, name := range []string{"age", "greedy", "cost-benefit", "multi-log", "MDC", "MDC-opt"} {
		alg, err := repro.AlgorithmByName(name)
		if err != nil {
			log.Fatal(err)
		}
		cfg := repro.SimConfig{
			SegmentPages: segPages, NumSegments: numSegs,
			FillFactor:   float64(tr.Universe) / float64(numSegs*segPages),
			FreeLowWater: 4, CleanBatch: 8, WriteBufferSegs: 8,
		}
		// The *-opt variants pre-analyze page update frequencies from the
		// trace, as in the paper.
		gen := repro.ReplayWorkload("tpcc", tr.Writes, tr.Universe, tr.Preload, alg.Exact)
		res, err := repro.RunSim(cfg, alg, gen, repro.SimRunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%d\n", name, res.Wamp, res.MeanEAtClean, res.SegmentsCleaned)
	}
	w.Flush()
	fmt.Println("\nexpected shape (paper Fig. 6): age worst; multi-log behind cost-benefit")
	fmt.Println("(slow convergence on short traces); MDC lowest among estimator policies.")
}
